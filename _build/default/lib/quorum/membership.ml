type segment_kind = Full | Tail

type member = { id : Member_id.t; az : Az.t; kind : segment_kind }

type scheme =
  | Plain of { write_threshold : int; read_threshold : int }
  | Tiered of { mixed_write : int; mixed_read : int }

type pending = { suspect : Member_id.t; replacement : Member_id.t }

type t = {
  epoch : Epoch.t;
  roster : member Member_id.Map.t; (* every involved member, incl. pending *)
  base : Member_id.Set.t; (* members not part of any pending pair *)
  pendings : pending list;
  scheme : scheme;
}

let epoch t = t.epoch
let scheme t = t.scheme
let pendings t = t.pendings
let members t = List.map snd (Member_id.Map.bindings t.roster)
let member_ids t = Member_id.Map.fold (fun id _ s -> Member_id.Set.add id s) t.roster Member_id.Set.empty
let find_member t id = Member_id.Map.find_opt id t.roster
let is_steady t = t.pendings = []

(* All candidate final member sets: the base plus one choice (suspect or
   replacement) per pending pair — 2^|pendings| variants. *)
let variants t =
  List.fold_left
    (fun acc { suspect; replacement } ->
      List.concat_map
        (fun set ->
          [ Member_id.Set.add suspect set; Member_id.Set.add replacement set ])
        acc)
    [ t.base ] t.pendings

let atom_for t ~read set =
  let members_list = Member_id.Set.elements set in
  match t.scheme with
  | Plain { write_threshold; read_threshold } ->
    Quorum_set.k_of (if read then read_threshold else write_threshold) members_list
  | Tiered { mixed_write; mixed_read } ->
    let fulls =
      List.filter
        (fun id ->
          match Member_id.Map.find_opt id t.roster with
          | Some m -> m.kind = Full
          | None -> false)
        members_list
    in
    if read then
      (* 3/6 of any segment AND 1/3 of full segments *)
      Quorum_set.all
        [ Quorum_set.k_of mixed_read members_list; Quorum_set.k_of 1 fulls ]
    else
      (* 4/6 of any segment OR 3/3 of full segments *)
      Quorum_set.any
        [
          Quorum_set.k_of mixed_write members_list;
          Quorum_set.k_of (List.length fulls) fulls;
        ]

let rule t =
  let vs = variants t in
  let write = Quorum_set.all (List.map (fun v -> atom_for t ~read:false v) vs) in
  let read = Quorum_set.any (List.map (fun v -> atom_for t ~read:true v) vs) in
  Quorum_set.Rule.make_exn ~read ~write

let validate t =
  match rule t with
  | (_ : Quorum_set.Rule.t) -> Ok t
  | exception Invalid_argument msg -> Error msg

let create ~scheme member_list =
  let roster =
    List.fold_left
      (fun acc m ->
        if Member_id.Map.mem m.id acc then
          invalid_arg "Membership.create: duplicate member id"
        else Member_id.Map.add m.id m acc)
      Member_id.Map.empty member_list
  in
  let base =
    Member_id.Map.fold (fun id _ s -> Member_id.Set.add id s) roster
      Member_id.Set.empty
  in
  let t = { epoch = Epoch.initial; roster; base; pendings = []; scheme } in
  (* Force rule construction so an unsafe scheme fails fast. *)
  ignore (rule t);
  t

let begin_change t ~suspect ~replacement =
  match Member_id.Map.find_opt suspect t.roster with
  | None -> Error "suspect is not a member of this group"
  | Some suspect_member ->
    if List.exists (fun p -> Member_id.equal p.suspect suspect) t.pendings
    then Error "suspect is already under replacement"
    else if
      List.exists
        (fun p -> Member_id.equal p.replacement suspect)
        t.pendings
    then Error "cannot replace an in-flight replacement"
    else if Member_id.Map.mem replacement.id t.roster then
      Error "replacement id already in use"
    else if replacement.kind <> suspect_member.kind then
      Error "replacement kind must match the suspect's (full vs tail)"
    else begin
      let t' =
        {
          t with
          epoch = Epoch.next t.epoch;
          roster = Member_id.Map.add replacement.id replacement t.roster;
          base = Member_id.Set.remove suspect t.base;
          pendings = t.pendings @ [ { suspect; replacement = replacement.id } ];
        }
      in
      validate t'
    end

let resolve t ~suspect ~keep_replacement =
  match
    List.find_opt (fun p -> Member_id.equal p.suspect suspect) t.pendings
  with
  | None -> Error "no pending change for this suspect"
  | Some pair ->
    let keep, drop =
      if keep_replacement then (pair.replacement, pair.suspect)
      else (pair.suspect, pair.replacement)
    in
    let t' =
      {
        t with
        epoch = Epoch.next t.epoch;
        roster = Member_id.Map.remove drop t.roster;
        base = Member_id.Set.add keep t.base;
        pendings =
          List.filter
            (fun p -> not (Member_id.equal p.suspect suspect))
            t.pendings;
      }
    in
    validate t'

let commit_change t ~suspect = resolve t ~suspect ~keep_replacement:true
let revert_change t ~suspect = resolve t ~suspect ~keep_replacement:false

let change_scheme t ~scheme member_list =
  if not (is_steady t) then
    Error "cannot change scheme while a membership change is pending"
  else begin
    let fresh = create ~scheme member_list in
    Ok { fresh with epoch = Epoch.next t.epoch }
  end

let pp fmt t =
  Format.fprintf fmt "epoch %a, members %a%s" Epoch.pp t.epoch Member_id.pp_set
    (member_ids t)
    (match t.pendings with
    | [] -> ""
    | ps ->
      " pending:"
      ^ String.concat ","
          (List.map
             (fun p ->
               Format.asprintf " %a->%a" Member_id.pp p.suspect Member_id.pp
                 p.replacement)
             ps))
