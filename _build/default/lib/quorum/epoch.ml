type t = int

let initial = 1

let of_int i =
  if i < 1 then invalid_arg "Epoch.of_int: must be positive" else i

let to_int t = t
let next t = t + 1
let compare = Int.compare
let equal = Int.equal
let is_stale e ~current = e < current
let pp fmt t = Format.fprintf fmt "e%d" t

type check = Ok | Stale of { current : t }

let check e ~current = if e < current then Stale { current } else Ok
