(** Epochs: monotonically increasing fencing tokens (§2.4, §4.1).

    Aurora uses three flavours — volume epochs (crash-recovery fencing of old
    writer instances), membership epochs (one per protection-group membership
    change), and volume-geometry epochs (volume growth / quorum-model
    change).  All share the same semantics: every request carries the
    client's current epoch; servers reject requests at stale epochs; an epoch
    increment is itself just a quorum write.  "Rather than waiting for a
    lease to expire, Aurora just changes the locks on the door." *)

type t = private int

val initial : t
(** Epoch 1. *)

val of_int : int -> t
(** @raise Invalid_argument unless positive. *)

val to_int : t -> int
val next : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool

val is_stale : t -> current:t -> bool
(** [is_stale e ~current] — [e] is older than [current] and must be
    rejected. *)

val pp : Format.formatter -> t -> unit

(** Outcome of validating a request's epoch against the server's. *)
type check = Ok | Stale of { current : t }

val check : t -> current:t -> check
