(** Canonical protection-group layouts.

    Builders for the member rosters and schemes the paper discusses:
    Aurora's production 6-copies-across-3-AZs design, the §4.2 tiered
    (3 full + 3 tail) variant, and the strawman 2/3 design Figure 1 uses to
    motivate six copies. *)

val aurora_v6 : ?first_id:int -> unit -> Membership.member list
(** Six members, two per AZ (AZ1: A,B; AZ2: C,D; AZ3: E,F), all {!Membership.Full}. *)

val aurora_tiered : ?first_id:int -> unit -> Membership.member list
(** Six members, two per AZ, one full + one tail in each AZ (§4.2). *)

val three_copies : ?first_id:int -> unit -> Membership.member list
(** Three members, one per AZ — the 2/3 strawman of Figure 1. *)

val four_copies_two_az : ?first_id:int -> unit -> Membership.member list
(** Four members over two AZs — the 3/4 degraded mode of §4.1 used after
    extended loss of an AZ. *)

val scheme_4_of_6 : Membership.scheme
(** Plain write 4/6, read 3/6. *)

val scheme_2_of_3 : Membership.scheme
(** Plain write 2/3, read 2/3. *)

val scheme_3_of_4 : Membership.scheme
(** Plain write 3/4, read 2/4. *)

val scheme_tiered : Membership.scheme
(** §4.2: write [4/6 OR 3/3 fulls], read [3/6 AND 1/3 fulls]. *)

val group_4_of_6 : unit -> Membership.t
val group_2_of_3 : unit -> Membership.t
val group_tiered : unit -> Membership.t

val members_in_az : Membership.member list -> Az.t -> Member_id.Set.t
(** Ids of roster members placed in the given AZ (the correlated-failure
    unit for availability experiments). *)
