(** Quorum member identifiers.

    A member of a protection-group quorum is a segment replica hosted on some
    storage node.  Small ids render as the paper's letters (A–F, G, H...) so
    traces of membership changes read like Figure 5. *)

type t = private int

val of_int : int -> t
val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t

val set_of_list : t list -> Set.t
val pp_set : Format.formatter -> Set.t -> unit
