open Simcore

type snapshot = {
  pg : Pg_id.t;
  seg : Quorum.Member_id.t;
  upto : Wal.Lsn.t;
  bytes : int;
  taken_at : Time_ns.t;
}

type t = {
  sim : Sim.t;
  rng : Rng.t;
  latency : Distribution.t;
  mutable durable : snapshot list;
  mutable in_flight : int;
  mutable bytes : int;
}

let create ~sim ~latency ~rng =
  { sim; rng; latency; durable = []; in_flight = 0; bytes = 0 }

let upload t snap ~on_durable =
  t.in_flight <- t.in_flight + 1;
  let delay = Distribution.sample t.latency t.rng in
  ignore
    (Sim.schedule t.sim ~delay (fun () ->
         t.in_flight <- t.in_flight - 1;
         t.durable <- snap :: t.durable;
         t.bytes <- t.bytes + snap.bytes;
         on_durable ()))

let durable_upto t pg seg =
  List.fold_left
    (fun acc s ->
      if Pg_id.equal s.pg pg && Quorum.Member_id.equal s.seg seg then
        Wal.Lsn.max acc s.upto
      else acc)
    Wal.Lsn.none t.durable

let snapshots t = t.durable
let uploads_in_flight t = t.in_flight
let total_bytes t = t.bytes
