(** Materialized data blocks with non-destructive versioning.

    Full segments coalesce redo into block images (Figure 2, step 5).
    "Aurora blocks are written out-of-place and non-destructively" (§3.4):
    every key in a block carries a chain of versions tagged with the LSN and
    transaction that wrote them, so any reader — writer instance or lagging
    replica — can reconstruct the block as of any LSN at or above the
    garbage-collection floor (PGMRPL).

    The store also keeps a per-block checksum over the newest versions,
    giving the scrubber (Figure 2, step 8) something to verify, and a
    corruption hook for fault-injection tests. *)

type version = {
  value : string option;  (** [None] encodes a delete. *)
  txn : Wal.Txn_id.t;
  lsn : Wal.Lsn.t;
}

type t

val create : unit -> t

val apply : t -> Wal.Log_record.t -> unit
(** Apply one redo record.  Records for a given block must be applied in
    block-chain (ascending LSN) order; commit/abort/noop records are
    ignored here (transaction status lives at the database tier). *)

val applied_upto : t -> Wal.Lsn.t
(** Highest LSN applied so far. *)

val versions : t -> Wal.Block_id.t -> key:string -> version list
(** Version chain for a key, newest first; [] if unknown. *)

val read_at :
  t ->
  Wal.Block_id.t ->
  key:string ->
  as_of:Wal.Lsn.t ->
  exclude:Wal.Txn_id.Set.t ->
  version option
(** MVCC read: the newest version with [lsn <= as_of] whose writing
    transaction is not in [exclude] (the read view's active/aborted set).
    This is the storage half of snapshot isolation; the exclusion set comes
    from the database tier. *)

val block_snapshot : t -> Wal.Block_id.t -> (string * version list) list
(** Entire block: every key with its full version chain (newest first).
    Used for block reads, replica cache fills, and full-segment repair. *)

val load_snapshot : t -> Wal.Block_id.t -> (string * version list) list -> unit
(** Install a block image wholesale (repair / hydration path).  Existing
    versions for the block are replaced. *)

val rollback_above : t -> Wal.Lsn.t -> int
(** Drop every version with [lsn] strictly above the bound — applied when a
    truncation range annuls records the background coalescer had already
    materialized (§2.4).  Returns versions dropped. *)

val gc :
  t -> keep_at_or_above:Wal.Lsn.t -> is_committed:(Wal.Txn_id.t -> bool) -> int
(** Drop versions superseded before the floor: for each key, every version
    older than the newest *committed* version with [lsn <= floor] is
    unreferenced by any legal read view and is collected.  Uncommitted or
    unknown-outcome versions never anchor the cut (their data below must
    survive the logical undo).  Returns versions dropped. *)

val blocks : t -> Wal.Block_id.t list
val version_count : t -> int
val bytes_used : t -> int

val checksum : t -> Wal.Block_id.t -> int
(** Order-independent digest of the block's current contents. *)

val corrupt : t -> Wal.Block_id.t -> bool
(** Fault injection: silently flip a stored value so the checksum no longer
    matches.  Returns [false] if the block has no data to corrupt. *)

val verify : t -> Wal.Block_id.t -> bool
(** Recompute and compare the stored checksum (the scrubber's probe). *)
