(** Simulated object store for segment backups (Figure 2, step 6).

    Storage nodes push point-in-time snapshots here in the background; once
    a snapshot covering an LSN range is durable, the hot log below it
    becomes garbage-collectable (step 7).  A single [S3.t] is shared by a
    whole cluster, giving the experiments a place to measure backup
    traffic. *)

type snapshot = {
  pg : Pg_id.t;
  seg : Quorum.Member_id.t;
  upto : Wal.Lsn.t;  (** All log/pages at or below this LSN are captured. *)
  bytes : int;
  taken_at : Simcore.Time_ns.t;
}

type t

val create : sim:Simcore.Sim.t -> latency:Simcore.Distribution.t -> rng:Simcore.Rng.t -> t

val upload : t -> snapshot -> on_durable:(unit -> unit) -> unit
(** Asynchronously persist a snapshot; [on_durable] fires when the upload
    completes. *)

val durable_upto : t -> Pg_id.t -> Quorum.Member_id.t -> Wal.Lsn.t
(** Highest LSN covered by a durable snapshot for the segment
    ({!Wal.Lsn.none} if none). *)

val snapshots : t -> snapshot list
val uploads_in_flight : t -> int
val total_bytes : t -> int
