open Simcore

type t = {
  sim : Sim.t;
  rng : Rng.t;
  service : Distribution.t;
  per_byte_ns : int;
  mutable free_at : Time_ns.t;
  mutable completed : int;
  mutable bytes : int;
}

let create ~sim ~rng ~service ~per_byte_ns =
  if per_byte_ns < 0 then invalid_arg "Disk.create: negative per-byte cost";
  {
    sim;
    rng;
    service;
    per_byte_ns;
    free_at = Time_ns.zero;
    completed = 0;
    bytes = 0;
  }

let submit t ~bytes callback =
  let start = Time_ns.max (Sim.now t.sim) t.free_at in
  let service = Distribution.sample t.service t.rng in
  let transfer = bytes * t.per_byte_ns in
  let done_at = Time_ns.add start (Time_ns.add service transfer) in
  t.free_at <- done_at;
  ignore
    (Sim.schedule_at t.sim ~at:done_at (fun () ->
         t.completed <- t.completed + 1;
         t.bytes <- t.bytes + bytes;
         callback ()))

let busy_until t = t.free_at

let queue_delay t =
  let now = Sim.now t.sim in
  if Time_ns.compare t.free_at now > 0 then Time_ns.diff t.free_at now
  else Time_ns.zero

let completed t = t.completed
let bytes_written t = t.bytes
