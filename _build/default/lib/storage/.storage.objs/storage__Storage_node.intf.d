lib/storage/storage_node.mli: Disk Pg_id Protocol S3 Segment Simcore Simnet
