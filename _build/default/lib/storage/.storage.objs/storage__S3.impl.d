lib/storage/s3.ml: Distribution List Pg_id Quorum Rng Sim Simcore Time_ns Wal
