lib/storage/block_store.mli: Wal
