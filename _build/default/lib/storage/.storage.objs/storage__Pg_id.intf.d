lib/storage/pg_id.mli: Format Hashtbl Map
