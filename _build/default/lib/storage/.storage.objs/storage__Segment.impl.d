lib/storage/segment.ml: Block_store Epoch Hashtbl Hot_log List Log_record Lsn Member_id Membership Pg_id Protocol Quorum Simnet Txn_id Wal
