lib/storage/protocol.ml: Block_id Block_store Epoch Format List Log_record Lsn Member_id Pg_id Quorum Simnet String Txn_id Wal
