lib/storage/pg_id.ml: Format Hashtbl Int Map
