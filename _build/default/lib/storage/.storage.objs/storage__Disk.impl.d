lib/storage/disk.ml: Distribution Rng Sim Simcore Time_ns
