lib/storage/block_store.ml: Block_id Bytes Char Hashtbl List Log_record Lsn String Txn_id Wal
