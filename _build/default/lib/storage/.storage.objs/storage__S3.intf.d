lib/storage/s3.mli: Pg_id Quorum Simcore Wal
