lib/storage/segment.mli: Block_store Pg_id Protocol Quorum Simnet Wal
