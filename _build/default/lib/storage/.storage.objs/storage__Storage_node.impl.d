lib/storage/storage_node.ml: Disk Distribution Hot_log List Lsn Member_id Pg_id Protocol Quorum Rng S3 Segment Sim Simcore Simnet Time_ns Wal
