lib/storage/disk.mli: Simcore
