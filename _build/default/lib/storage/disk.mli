(** Simulated storage device: a FIFO queue with a stochastic service time
    plus a per-byte transfer cost.

    Every durable action on a storage node (hot-log append, block
    materialization, snapshot write) passes through the node's disk, so
    device latency and queueing show up in acknowledgement timing exactly
    where the paper's write path would see them. *)

type t

val create :
  sim:Simcore.Sim.t ->
  rng:Simcore.Rng.t ->
  service:Simcore.Distribution.t ->
  per_byte_ns:int ->
  t

val submit : t -> bytes:int -> (unit -> unit) -> unit
(** Enqueue an I/O; the callback fires when it completes (FIFO order). *)

val busy_until : t -> Simcore.Time_ns.t
(** Instant at which the device drains everything queued so far. *)

val queue_delay : t -> Simcore.Time_ns.t
(** How long a new submission would wait before service starts. *)

val completed : t -> int
val bytes_written : t -> int
