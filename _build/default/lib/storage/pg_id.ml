type t = int

let of_int i = if i < 0 then invalid_arg "Pg_id.of_int: negative" else i
let to_int t = t
let equal = Int.equal
let compare = Int.compare
let hash t = t
let pp fmt t = Format.fprintf fmt "PG%d" (t + 1)

module Map = Map.Make (Int)

module Tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash t = t
end)
