(** One segment replica: the durable state a storage node keeps per
    protection group it participates in.

    Couples the hot log (gap-tracked redo, SCL) with the block store
    (materialized versions, full segments only) and the fencing state
    (volume epoch, membership epoch, PGMRPL floor, backup progress).
    Pure state + transitions; all scheduling/IO pacing lives in
    {!Storage_node}. *)

type t

val create :
  pg:Pg_id.t ->
  seg:Quorum.Member_id.t ->
  kind:Quorum.Membership.segment_kind ->
  t

val pg : t -> Pg_id.t
val seg_id : t -> Quorum.Member_id.t
val kind : t -> Quorum.Membership.segment_kind
val hot_log : t -> Wal.Hot_log.t
val store : t -> Block_store.t
val scl : t -> Wal.Lsn.t
val coalesced_upto : t -> Wal.Lsn.t
val volume_epoch : t -> Quorum.Epoch.t
val membership_epoch : t -> Quorum.Epoch.t
val pgmrpl : t -> Wal.Lsn.t
val backup_upto : t -> Wal.Lsn.t
val set_backup_upto : t -> Wal.Lsn.t -> unit
val peers : t -> (Quorum.Member_id.t * Simnet.Addr.t) list
val set_peers : t -> (Quorum.Member_id.t * Simnet.Addr.t) list -> unit

val pgcl_known : t -> Wal.Lsn.t
val note_pgcl : t -> Wal.Lsn.t -> unit
(** Adopt a (monotone) writer-advertised group durable point; bounds read
    acceptance (§3.1 bookkeeping, pushed to the segment). *)

val check_epochs : t -> Protocol.epochs -> (unit, Protocol.reject_reason) result
(** Reject stale volume or membership epochs; adopt newer volume epochs (the
    new writer proves itself by carrying a higher epoch it installed through
    a write quorum).  Membership epochs are only adopted via
    {!install_membership} because they come with a roster. *)

val install_membership :
  t -> epoch:Quorum.Epoch.t -> peers:(Quorum.Member_id.t * Simnet.Addr.t) list -> unit
(** Adopt a (newer) membership epoch and the accompanying roster; older
    epochs are ignored. *)

val install_volume_epoch : t -> Quorum.Epoch.t -> unit

val insert_records : t -> Wal.Log_record.t list -> Wal.Lsn.t
(** Append records to the hot log (duplicates/annulled are skipped) and
    return the resulting SCL. *)

val coalesce : t -> int
(** Materialize chained-but-unapplied records into the block store (full
    segments; no-op for tails).  Returns records applied. *)

val read_block :
  t ->
  block:Wal.Block_id.t ->
  as_of:Wal.Lsn.t ->
  (Protocol.block_image, Protocol.read_error) result
(** Serve a block image at [as_of], materializing on demand first.  Tail
    segments refuse; requests outside [PGMRPL, SCL] are refused (§3.4). *)

val truncate : t -> above:Wal.Lsn.t -> upto:Wal.Lsn.t -> int
(** Apply a truncation range to the hot log and roll back any coalesced
    versions above the cut (§2.4).  Returns records+versions dropped. *)

val advance_pgmrpl : t -> Wal.Lsn.t -> int
(** Raise the GC floor (monotone) and collect superseded block versions.
    Returns versions collected. *)

val gc_hot_log : t -> int
(** Drop hot-log records no longer needed: at or below
    [min backup_upto (coalesced or scl for tails) pgmrpl]. *)

val hydrate_export :
  t -> since:Wal.Lsn.t -> want_blocks:bool ->
  Wal.Log_record.t list
  * (Wal.Block_id.t * (string * Block_store.version list) list) list
(** What a peer needs to rebuild itself: our retained chain records above
    [since] and (optionally) full block snapshots. *)

val hydrate_import :
  t ->
  records:Wal.Log_record.t list ->
  blocks:(Wal.Block_id.t * (string * Block_store.version list) list) list ->
  donor_scl:Wal.Lsn.t ->
  coalesced:Wal.Lsn.t ->
  unit
(** Adopt a peer's exported state into this (fresh) segment: anchor the hot
    log at the chain position preceding the oldest record (or at
    [donor_scl] when the donor's hot log was fully collected), install
    block snapshots, and continue coalescing from [coalesced]. *)

val txn_statuses : t -> (Wal.Txn_id.t * Wal.Lsn.t * bool) list
(** Durable transaction outcomes — (txn, status-record LSN, is_abort) —
    accumulated from received commit/abort redo.  Survives hot-log GC,
    playing the role of the txn-system pages a real engine materializes;
    crash recovery unions these across segments. *)

val merge_statuses : t -> (Wal.Txn_id.t * Wal.Lsn.t * bool) list -> unit
(** Adopt a peer's statuses during hydration. *)

val retained_from : t -> Wal.Lsn.t
(** Hot-log GC floor (see {!Wal.Hot_log.dropped_upto}). *)

val scrub : t -> Wal.Block_id.t list
(** Verify block checksums; returns the corrupt blocks found (Figure 2
    step 8).  Repair is the node's job (re-hydrate those blocks). *)

val bytes_stored : t -> int
(** Hot log + block store footprint (the §4.2 cost metric). *)
