(** Protection-group identifiers.

    A protection group is six segment replicas of one 10 GB slice of the
    volume; protection groups concatenate to form the storage volume
    (§2.1). *)

type t = private int

val of_int : int -> t
val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
