(** Fleet availability model for Figure 1: why six copies across three AZs.

    Monte Carlo simulation of one protection group's members under two
    failure processes — independent segment failures (exponential MTTF,
    repair = detection window + rebuild) and correlated AZ outages that
    take down every member in the zone.  Evaluated against an arbitrary
    {!Quorum.Quorum_set.Rule}, so the same engine scores the 2/3 strawman,
    Aurora's 4/6, the degraded 3/4, and the §4.2 tiered design.

    Two readouts reproduce the paper's argument:

    - steady-state unavailability fractions (write / read quorum not
      satisfiable), and
    - the AZ+1 question: at each AZ-outage onset, is the quorum still
      intact (write side) and repairable (read side) given the background
      failures at that instant?

    An analytic cross-check ({!analytic}) computes the binomial
    approximation P(>= k members down) with member down-probability
    rho = MTTR / (MTTF + MTTR), which the property tests compare against
    the Monte Carlo numbers. *)

open Quorum

type params = {
  segment_mttf : Simcore.Time_ns.t;
  repair_detection : Simcore.Time_ns.t;  (** Paper's 10 s window. *)
  repair_duration : Simcore.Time_ns.t;  (** Segment rebuild time. *)
  az_mttf : Simcore.Time_ns.t;  (** Per-AZ outage rate. *)
  az_outage : Simcore.Time_ns.t;  (** Outage duration. *)
  horizon : Simcore.Time_ns.t;  (** Simulated span per group. *)
  groups : int;  (** Independent protection groups simulated. *)
}

val default_params : params
(** 1-year horizon, 10k groups, 6-month segment MTTF, 10 s detection +
    5 min rebuild, 2-year AZ MTTF with 1 h outages — aggressive rates that
    surface rare events at simulation scale. *)

type result = {
  write_unavail : float;  (** Fraction of time write quorum unsatisfiable. *)
  read_unavail : float;  (** Fraction of time read quorum unsatisfiable. *)
  write_loss_episodes : int;
  read_loss_episodes : int;
  az_onsets : int;  (** AZ outages injected. *)
  az_write_survived : int;  (** Write quorum intact at outage onset. *)
  az_read_survived : int;  (** Read quorum (repairability) intact. *)
  member_failures : int;
}

val run :
  rng:Simcore.Rng.t ->
  params:params ->
  members:Membership.member list ->
  rule:Quorum_set.Rule.t ->
  result

type analytic = {
  rho : float;  (** Steady-state member down-probability. *)
  p_write_loss : float;  (** P(write quorum unsatisfiable), independent faults only. *)
  p_read_loss : float;
}

val analytic :
  params:params -> members:Membership.member list -> rule:Quorum_set.Rule.t -> analytic
(** Exact enumeration over member subsets weighted by iid down-probability
    rho — the independent-failure-only reference the Monte Carlo must
    approach when AZ outages are disabled. *)

(** Deterministic Figure-1 check: worst case over AZs (and over the extra
    failed member for the +1 variants). *)
type az_tolerance = {
  write_survives_az : bool;  (** Write quorum outlives any single AZ. *)
  read_survives_az : bool;
  write_survives_az_plus_one : bool;
  read_survives_az_plus_one : bool;
      (** The paper's "AZ+1" durability bar: repairability must survive an
          AZ outage plus one concurrent independent failure. *)
}

val az_tolerance :
  members:Membership.member list -> rule:Quorum_set.Rule.t -> az_tolerance

val analytic_given_az :
  params:params ->
  members:Membership.member list ->
  rule:Quorum_set.Rule.t ->
  float * float
(** (P(write-quorum loss), P(read-quorum loss)) at the onset of an AZ
    outage (worst AZ), with each surviving member independently down with
    probability rho — the quantitative form of Figure 1. *)
