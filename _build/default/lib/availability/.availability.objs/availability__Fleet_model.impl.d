lib/availability/fleet_model.ml: Array Az Float Hashtbl Heap Int List Member_id Membership Quorum Quorum_set Rng Simcore Time_ns
