lib/availability/fleet_model.mli: Membership Quorum Quorum_set Simcore
