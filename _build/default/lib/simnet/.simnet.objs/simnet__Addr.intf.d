lib/simnet/addr.mli: Format Hashtbl Map Set
