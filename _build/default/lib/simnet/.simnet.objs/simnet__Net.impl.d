lib/simnet/net.ml: Addr Distribution Float Hashtbl Rng Sim Simcore Time_ns
