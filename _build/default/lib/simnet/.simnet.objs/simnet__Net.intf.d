lib/simnet/net.mli: Addr Simcore
