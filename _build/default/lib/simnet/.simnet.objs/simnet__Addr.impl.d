lib/simnet/addr.ml: Format Hashtbl Int Map Set
