(** Network addresses of simulated processes (database instances, storage
    nodes, protocol participants). *)

type t = private int

val of_int : int -> t
val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t

(** Sequential address allocator for cluster assembly. *)
module Allocator : sig
  type addr := t
  type t

  val create : unit -> t
  val take : t -> addr
end
