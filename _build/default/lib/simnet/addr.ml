type t = int

let of_int i = if i < 0 then invalid_arg "Addr.of_int: negative" else i
let to_int t = t
let equal = Int.equal
let compare = Int.compare
let hash t = t
let pp fmt t = Format.fprintf fmt "n%d" t

module Set = Set.Make (Int)
module Map = Map.Make (Int)

module Tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash t = t
end)

module Allocator = struct
  type nonrec t = { mutable next : int }

  let create () = { next = 0 }

  let take t =
    let a = t.next in
    t.next <- a + 1;
    a
end
