(** Zipfian key-popularity sampler.

    Standard skewed access pattern for database workloads: key rank [r]
    (1-based) is drawn with probability proportional to [1 / r^theta].
    Uses the rejection-free inverse-CDF approximation of Gray et al.
    (the same construction YCSB uses), O(1) per sample after O(1) setup. *)

type t

val create : n:int -> theta:float -> t
(** [n] keys, skew [theta] in [\[0, 1)]; theta = 0 is uniform, 0.99 is the
    YCSB-default heavy skew.
    @raise Invalid_argument for [n <= 0] or [theta] outside [\[0, 1)]. *)

val sample : t -> Simcore.Rng.t -> int
(** A key index in [\[0, n)]; index 0 is the most popular. *)

val n : t -> int
val theta : t -> float
