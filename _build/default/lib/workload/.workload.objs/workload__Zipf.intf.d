lib/workload/zipf.mli: Simcore
