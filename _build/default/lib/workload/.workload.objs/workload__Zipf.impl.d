lib/workload/zipf.ml: Simcore
