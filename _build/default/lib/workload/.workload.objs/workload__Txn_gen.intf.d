lib/workload/txn_gen.mli: Aurora_core Simcore Txn_id Wal
