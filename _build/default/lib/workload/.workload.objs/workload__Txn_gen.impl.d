lib/workload/txn_gen.ml: Aurora_core Distribution Float Histogram List Printf Rng Sim Simcore String Time_ns Txn_id Wal Zipf
