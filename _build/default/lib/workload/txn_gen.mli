(** Transaction workload generators.

    Drives a {!Aurora_core.Database} (and optionally replicas) with a
    configurable mix of transactions:

    - open-loop: arrivals are a Poisson process at a target rate,
      independent of completions — exposes queueing/jitter (E6, E7);
    - closed-loop: a fixed number of clients, each issuing its next
      transaction after the previous one acknowledges (plus think time) —
      exposes throughput under bounded concurrency.

    Every transaction draws [ops_per_txn] keys (Zipfian), performs
    [write_fraction] of them as puts and the rest as snapshot gets, then
    commits.  Commit acknowledgement latency lands in the generator's
    histogram; durability bookkeeping (what was acked, with which value)
    is retained so fault-injection tests can audit zero-loss after crashes. *)

open Wal

type profile = {
  ops_per_txn : int;
  write_fraction : float;
  key_count : int;
  zipf_theta : float;
  value_size : int;
  mtr_fraction : float;
      (** Fraction of write transactions that use one multi-block MTR
          (structural-change analogue) instead of independent puts. *)
}

val default_profile : profile

type t

type acked = {
  acked_txn : Txn_id.t;
  keys_written : (string * string) list;
  acked_at : Simcore.Time_ns.t;
}

val create :
  sim:Simcore.Sim.t ->
  rng:Simcore.Rng.t ->
  db:Aurora_core.Database.t ->
  profile:profile ->
  unit ->
  t

val run_open_loop :
  t -> rate_per_sec:float -> duration:Simcore.Time_ns.t -> unit
(** Schedule a Poisson arrival stream.  Call {!Simcore.Sim.run_until}
    afterwards to execute it. *)

val run_closed_loop :
  t ->
  clients:int ->
  think_time:Simcore.Distribution.t ->
  duration:Simcore.Time_ns.t ->
  unit

val issue_one : t -> on_done:((unit, string) result -> unit) -> unit
(** One transaction through the full path (used by tests). *)

val commit_latency : t -> Simcore.Histogram.t
val read_latency : t -> Simcore.Histogram.t
val issued : t -> int
val acked : t -> int
val failed : t -> int
val acked_writes : t -> acked list
(** Audit trail: every acknowledged transaction with the key/values it
    wrote, in ack order. *)

val unacked_writes : t -> (string * string) list
(** Writes whose commit was requested but never acknowledged (in-doubt at
    a crash): recovery may legitimately keep or discard them. *)

val writes_in_issue_order : t -> (string * string * bool) list
(** Every write in issue order — which equals LSN order, since puts
    allocate LSNs synchronously — tagged with whether its transaction's
    commit was acknowledged.  This is the durability oracle: the visible
    value of a key must be its last acknowledged write or a later in-doubt
    one (MVCC orders versions by LSN, not by commit-ack order). *)
