type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  zeta2 : float;
}

let zeta n theta =
  let acc = ref 0. in
  for i = 1 to n do
    acc := !acc +. (1. /. (float_of_int i ** theta))
  done;
  !acc

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n";
  if theta < 0. || theta >= 1. then invalid_arg "Zipf.create: theta";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1. /. (1. -. theta) in
  let eta =
    (1. -. ((2. /. float_of_int n) ** (1. -. theta)))
    /. (1. -. (zeta2 /. zetan))
  in
  { n; theta; alpha; zetan; eta; zeta2 }

let sample t rng =
  if t.theta = 0. then Simcore.Rng.int rng t.n
  else begin
    let u = Simcore.Rng.unit_float rng in
    let uz = u *. t.zetan in
    if uz < 1. then 0
    else if uz < 1. +. (0.5 ** t.theta) then 1
    else
      let idx =
        int_of_float
          (float_of_int t.n
          *. (((t.eta *. u) -. t.eta +. 1.) ** t.alpha))
      in
      if idx >= t.n then t.n - 1 else idx
  end

let n t = t.n
let theta t = t.theta
