open Simcore

type config = {
  log_read_mb_per_s : float;
  replay_records_per_s : float;
  page_fetch : Time_ns.t;
  page_fetch_fraction : float;
  undo_records_per_s : float;
}

let default_config =
  {
    log_read_mb_per_s = 500.;
    replay_records_per_s = 200_000.;
    page_fetch = Time_ns.us 100;
    page_fetch_fraction = 0.3;
    undo_records_per_s = 100_000.;
  }

type estimate = {
  analysis : Time_ns.t;
  redo : Time_ns.t;
  undo : Time_ns.t;
  total : Time_ns.t;
}

let seconds_to_ns s = Time_ns.of_float_us (s *. 1e6)

let recovery_time config ~log_bytes ~records ~loser_records =
  let scan_s =
    float_of_int log_bytes /. (config.log_read_mb_per_s *. 1024. *. 1024.)
  in
  (* Analysis pass scans the log once; redo scans it again and applies. *)
  let analysis = seconds_to_ns scan_s in
  let replay_s = float_of_int records /. config.replay_records_per_s in
  let fetch_ns =
    config.page_fetch_fraction *. float_of_int records
    *. float_of_int config.page_fetch
  in
  let redo =
    Time_ns.add (seconds_to_ns (scan_s +. replay_s))
      (int_of_float fetch_ns)
  in
  let undo =
    seconds_to_ns (float_of_int loser_records /. config.undo_records_per_s)
  in
  { analysis; redo; undo; total = Time_ns.add analysis (Time_ns.add redo undo) }

let simulate ~sim config ~log_bytes ~records ~loser_records ~on_open =
  let est = recovery_time config ~log_bytes ~records ~loser_records in
  (* ARIES opens the database after redo completes; undo can be concurrent
     in modern variants, but the log scan + replay is unavoidable. *)
  ignore (Sim.schedule sim ~delay:(Time_ns.add est.analysis est.redo) on_open)
