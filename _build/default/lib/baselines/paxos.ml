open Simcore

type value = int

(* Ballots order by (round, proposer_id). *)
type ballot = int * int

let ballot_compare (r1, p1) (r2, p2) =
  let c = Int.compare r1 r2 in
  if c <> 0 then c else Int.compare p1 p2

type message =
  | Prepare of { ballot : ballot }
  | Promise of {
      ballot : ballot;
      accepted : (ballot * value) option;
      from : Simnet.Addr.t;
    }
  | Reject of { ballot : ballot; promised : ballot }
  | Accept of { ballot : ballot; value : value }
  | Accepted of { ballot : ballot; from : Simnet.Addr.t }

type config = {
  acceptors : Simnet.Addr.t list;
  log_force : Distribution.t;
  retry_timeout : Time_ns.t;
}

type stats = { mutable messages : int; mutable rounds : int }

type acceptor_state = {
  mutable promised : ballot option;
  mutable accepted : (ballot * value) option;
}

type t = {
  sim : Sim.t;
  rng : Rng.t;
  net : message Simnet.Net.t;
  config : config;
  stats : stats;
  acceptor_states : acceptor_state Simnet.Addr.Tbl.t;
}

let majority t = (List.length t.config.acceptors / 2) + 1

let send t ~src ~dst msg =
  t.stats.messages <- t.stats.messages + 1;
  Simnet.Net.send t.net ~src ~dst ~bytes:64 msg

let log_force t k =
  ignore (Sim.schedule t.sim ~delay:(Distribution.sample t.config.log_force t.rng) k)

let acceptor_handle t self (env : message Simnet.Net.envelope) =
  let st = Simnet.Addr.Tbl.find t.acceptor_states self in
  match env.msg with
  | Prepare { ballot } ->
    let ok =
      match st.promised with
      | Some p -> ballot_compare ballot p >= 0
      | None -> true
    in
    if ok then begin
      st.promised <- Some ballot;
      (* Promise is durable before answering. *)
      log_force t (fun () ->
          send t ~src:self ~dst:env.src
            (Promise { ballot; accepted = st.accepted; from = self }))
    end
    else
      send t ~src:self ~dst:env.src
        (Reject { ballot; promised = Option.get st.promised })
  | Accept { ballot; value } ->
    let ok =
      match st.promised with
      | Some p -> ballot_compare ballot p >= 0
      | None -> true
    in
    if ok then begin
      st.promised <- Some ballot;
      st.accepted <- Some (ballot, value);
      log_force t (fun () ->
          send t ~src:self ~dst:env.src (Accepted { ballot; from = self }))
    end
    else
      send t ~src:self ~dst:env.src
        (Reject { ballot; promised = Option.get st.promised })
  | Promise _ | Reject _ | Accepted _ -> ()

let create ~sim ~rng ~net ~config () =
  let t =
    {
      sim;
      rng;
      net;
      config;
      stats = { messages = 0; rounds = 0 };
      acceptor_states = Simnet.Addr.Tbl.create 8;
    }
  in
  List.iter
    (fun a ->
      Simnet.Addr.Tbl.replace t.acceptor_states a
        { promised = None; accepted = None };
      Simnet.Net.register net a (acceptor_handle t a))
    config.acceptors;
  t

type proposer_round = {
  ballot : ballot;
  mutable promises : (ballot * value) option list;
  mutable promise_count : int;
  mutable accepted_count : int;
  mutable phase2 : bool;
  mutable dead : bool;
}

let propose t ~proposer ~proposer_id value ~on_chosen =
  let decided = ref false in
  let round_no = ref 0 in
  let current : proposer_round option ref = ref None in
  let rec start_round () =
    if not !decided then begin
      (match !current with Some r -> r.dead <- true | None -> ());
      incr round_no;
      t.stats.rounds <- t.stats.rounds + 1;
      let round =
        {
          ballot = (!round_no, proposer_id);
          promises = [];
          promise_count = 0;
          accepted_count = 0;
          phase2 = false;
          dead = false;
        }
      in
      current := Some round;
      List.iter
        (fun a -> send t ~src:proposer ~dst:a (Prepare { ballot = round.ballot }))
        t.config.acceptors;
      (* Jittered retry breaks duelling-proposer livelock. *)
      let jitter = Rng.int t.rng (Time_ns.to_float_us t.config.retry_timeout |> int_of_float |> max 1) in
      ignore
        (Sim.schedule t.sim
           ~delay:(Time_ns.add t.config.retry_timeout (Time_ns.us jitter))
           (fun () -> if (not !decided) && not round.dead then start_round ()))
    end
  in
  let handle (env : message Simnet.Net.envelope) =
    match (!current, env.msg) with
    | Some round, Promise { ballot; accepted; _ }
      when (not round.dead) && ballot = round.ballot && not round.phase2 ->
      round.promises <- accepted :: round.promises;
      round.promise_count <- round.promise_count + 1;
      if round.promise_count >= majority t then begin
        round.phase2 <- true;
        (* Adopt the highest accepted value among promises, else ours. *)
        let v =
          List.fold_left
            (fun acc p ->
              match (acc, p) with
              | None, Some (b, v) -> Some (b, v)
              | Some (b0, _), Some (b, v) when ballot_compare b b0 > 0 ->
                Some (b, v)
              | acc, _ -> acc)
            None round.promises
        in
        let v = match v with Some (_, v) -> v | None -> value in
        List.iter
          (fun a ->
            send t ~src:proposer ~dst:a (Accept { ballot = round.ballot; value = v }))
          t.config.acceptors;
        round.promises <- [ Some (round.ballot, v) ]
      end
    | Some round, Accepted { ballot; _ }
      when (not round.dead) && ballot = round.ballot && round.phase2 ->
      round.accepted_count <- round.accepted_count + 1;
      if round.accepted_count >= majority t && not !decided then begin
        decided := true;
        round.dead <- true;
        let v =
          match round.promises with
          | [ Some (_, v) ] -> v
          | _ -> value
        in
        on_chosen v
      end
    | Some round, Reject { ballot; _ } when (not round.dead) && ballot = round.ballot
      ->
      start_round ()
    | _ -> ()
  in
  Simnet.Net.register t.net proposer handle;
  start_round ()

let chosen t =
  (* A value is chosen once a majority accepted the same ballot. *)
  let tally = Hashtbl.create 8 in
  Simnet.Addr.Tbl.iter
    (fun _ st ->
      match st.accepted with
      | Some (ballot, v) ->
        let k = (ballot, v) in
        Hashtbl.replace tally k
          (1 + Option.value ~default:0 (Hashtbl.find_opt tally k))
      | None -> ())
    t.acceptor_states;
  Hashtbl.fold
    (fun (_, v) n acc -> if n >= majority t then Some v else acc)
    tally None

let stats t = t.stats
