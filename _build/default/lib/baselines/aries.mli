(** ARIES-style crash-recovery cost model — the "redo replay" Aurora
    eliminates (§2.4: "no redo replay is required as part of crash
    recovery since segments are able to generate data blocks on their
    own").

    A traditional single-node engine recovering after a crash must
    (1) analyse the log from the last checkpoint, (2) replay every redo
    record since the checkpoint ("repeating history"), and (3) undo losers
    — all before the database opens.  Recovery time is therefore linear in
    log-since-checkpoint.  This module is an analytic/simulated cost model
    parameterized by device and CPU rates; E4 sweeps the redo backlog and
    plots it against Aurora's flat recovery. *)

type config = {
  log_read_mb_per_s : float;  (** Sequential log scan bandwidth. *)
  replay_records_per_s : float;  (** Redo application rate. *)
  page_fetch : Simcore.Time_ns.t;  (** Random page read for replay. *)
  page_fetch_fraction : float;
      (** Fraction of replayed records whose page is not yet resident. *)
  undo_records_per_s : float;
}

val default_config : config
(** SSD-class device: 500 MB/s scan, 200k replay/s, 100us page fetch with
    30% miss rate, 100k undo/s. *)

type estimate = {
  analysis : Simcore.Time_ns.t;
  redo : Simcore.Time_ns.t;
  undo : Simcore.Time_ns.t;
  total : Simcore.Time_ns.t;
}

val recovery_time :
  config ->
  log_bytes:int ->
  records:int ->
  loser_records:int ->
  estimate
(** Time from crash to database-open for the given backlog. *)

val simulate :
  sim:Simcore.Sim.t ->
  config ->
  log_bytes:int ->
  records:int ->
  loser_records:int ->
  on_open:(unit -> unit) ->
  unit
(** Schedule the recovery phases on the simulator clock and call back when
    the database would open. *)
