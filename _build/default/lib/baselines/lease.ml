open Simcore

type t = {
  sim : Sim.t;
  duration : Time_ns.t;
  max_clock_skew : Time_ns.t;
  mutable current : (int * Time_ns.t) option; (* holder, granted_at *)
}

let create ~sim ~duration ~max_clock_skew =
  { sim; duration; max_clock_skew; current = None }

let expires_at t granted_at =
  Time_ns.add granted_at (Time_ns.add t.duration t.max_clock_skew)

let holder t now =
  match t.current with
  | Some (h, granted_at) when Time_ns.compare now (expires_at t granted_at) < 0
    ->
    Some h
  | Some _ | None -> None

let takeover_wait t =
  let now = Sim.now t.sim in
  match t.current with
  | Some (_, granted_at) ->
    let e = expires_at t granted_at in
    if Time_ns.compare now e < 0 then Time_ns.diff e now else Time_ns.zero
  | None -> Time_ns.zero

let acquire t ~holder:h =
  let now = Sim.now t.sim in
  match holder t now with
  | Some incumbent when incumbent <> h -> Error (takeover_wait t)
  | Some _ | None ->
    t.current <- Some (h, now);
    Ok ()

let renew t ~holder:h =
  match acquire t ~holder:h with Ok () -> true | Error _ -> false
