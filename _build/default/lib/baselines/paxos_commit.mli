(** Multi-Paxos replicated log used as a commit protocol — "Paxos commit"
    in the paper's terminology (§1, §2.3).

    A stable leader owns the log: it runs Phase 1 once (on election) and
    thereafter each commit is one Phase 2 round — Accept to all acceptors,
    durable force at each, majority of Accepted back, then an asynchronous
    Learn broadcast.  This is the *cheap* variant of consensus-per-commit;
    2PC-over-Paxos would be costlier.  Even so, each commit costs a
    synchronous majority round trip with a log force inside, versus
    Aurora's asynchronous quorum acks with no ordering round at all. *)

type message

type config = {
  leader : Simnet.Addr.t;
  acceptors : Simnet.Addr.t list;
  log_force : Simcore.Distribution.t;
}

type stats = {
  mutable commits : int;
  mutable messages : int;
  latency : Simcore.Histogram.t;
}

type t

val create :
  sim:Simcore.Sim.t ->
  rng:Simcore.Rng.t ->
  net:message Simnet.Net.t ->
  config:config ->
  unit ->
  t
(** Registers handlers and runs the leader's Phase 1 immediately. *)

val commit : t -> value:int -> on_done:(unit -> unit) -> unit
(** Append a value to the replicated log; [on_done] fires when a majority
    has durably accepted it (the client-visible commit point). *)

val log_length : t -> int
(** Committed log entries at the leader. *)

val stats : t -> stats
