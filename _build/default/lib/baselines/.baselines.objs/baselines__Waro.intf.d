lib/baselines/waro.mli: Simcore Simnet
