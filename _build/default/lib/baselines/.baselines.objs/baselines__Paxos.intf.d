lib/baselines/paxos.mli: Simcore Simnet
