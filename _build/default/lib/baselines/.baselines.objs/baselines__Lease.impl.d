lib/baselines/lease.ml: Sim Simcore Time_ns
