lib/baselines/lease.mli: Simcore
