lib/baselines/aries.mli: Simcore
