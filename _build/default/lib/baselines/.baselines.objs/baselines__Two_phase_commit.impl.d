lib/baselines/two_phase_commit.ml: Distribution Hashtbl Histogram List Rng Sim Simcore Simnet Time_ns
