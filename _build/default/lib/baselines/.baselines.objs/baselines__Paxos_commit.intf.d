lib/baselines/paxos_commit.mli: Simcore Simnet
