lib/baselines/paxos_commit.ml: Distribution Hashtbl Histogram List Rng Sim Simcore Simnet Time_ns
