lib/baselines/aries.ml: Sim Simcore Time_ns
