lib/baselines/paxos.ml: Distribution Hashtbl Int List Option Rng Sim Simcore Simnet Time_ns
