lib/baselines/waro.ml: Distribution Hashtbl Histogram List Rng Sim Simcore Simnet Time_ns
