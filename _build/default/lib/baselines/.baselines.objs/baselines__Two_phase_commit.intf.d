lib/baselines/two_phase_commit.mli: Simcore Simnet
