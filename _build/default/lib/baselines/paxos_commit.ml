open Simcore

type message =
  | Phase1 of { ballot : int }
  | Phase1_ok of { ballot : int }
  | Accept of { ballot : int; slot : int; value : int }
  | Accepted of { ballot : int; slot : int }
  | Learn of { slot : int; value : int }

type config = {
  leader : Simnet.Addr.t;
  acceptors : Simnet.Addr.t list;
  log_force : Distribution.t;
}

type stats = {
  mutable commits : int;
  mutable messages : int;
  latency : Histogram.t;
}

type acceptor_state = {
  mutable promised : int;
  log : (int, int) Hashtbl.t; (* slot -> value *)
}

type slot_state = {
  started_at : Time_ns.t;
  mutable acks : int;
  mutable done_ : bool;
  value : int;
  on_done : unit -> unit;
}

type t = {
  sim : Sim.t;
  rng : Rng.t;
  net : message Simnet.Net.t;
  config : config;
  stats : stats;
  acceptor_states : acceptor_state Simnet.Addr.Tbl.t;
  slots : (int, slot_state) Hashtbl.t;
  mutable leader_ready : bool;
  mutable phase1_oks : int;
  mutable next_slot : int;
  mutable committed : (int * int) list;
  mutable backlog : (int * (unit -> unit)) list; (* queued before Phase 1 done *)
}

let ballot = 1
let majority t = (List.length t.config.acceptors / 2) + 1

let send t ~src ~dst msg =
  t.stats.messages <- t.stats.messages + 1;
  Simnet.Net.send t.net ~src ~dst ~bytes:64 msg

let log_force t k =
  ignore (Sim.schedule t.sim ~delay:(Distribution.sample t.config.log_force t.rng) k)

let acceptor_handle t self (env : message Simnet.Net.envelope) =
  let st = Simnet.Addr.Tbl.find t.acceptor_states self in
  match env.msg with
  | Phase1 { ballot = b } ->
    if b >= st.promised then begin
      st.promised <- b;
      log_force t (fun () ->
          send t ~src:self ~dst:env.src (Phase1_ok { ballot = b }))
    end
  | Accept { ballot = b; slot; value } ->
    if b >= st.promised then begin
      Hashtbl.replace st.log slot value;
      log_force t (fun () ->
          send t ~src:self ~dst:env.src (Accepted { ballot = b; slot }))
    end
  | Learn { slot; value } -> Hashtbl.replace st.log slot value
  | Phase1_ok _ | Accepted _ -> ()

let do_commit t value on_done =
  let slot = t.next_slot in
  t.next_slot <- slot + 1;
  Hashtbl.add t.slots slot
    { started_at = Sim.now t.sim; acks = 0; done_ = false; value; on_done };
  List.iter
    (fun a -> send t ~src:t.config.leader ~dst:a (Accept { ballot; slot; value }))
    t.config.acceptors

let leader_handle t (env : message Simnet.Net.envelope) =
  match env.msg with
  | Phase1_ok { ballot = b } when b = ballot && not t.leader_ready ->
    t.phase1_oks <- t.phase1_oks + 1;
    if t.phase1_oks >= majority t then begin
      t.leader_ready <- true;
      let backlog = List.rev t.backlog in
      t.backlog <- [];
      List.iter (fun (v, k) -> do_commit t v k) backlog
    end
  | Accepted { ballot = b; slot } when b = ballot -> (
    match Hashtbl.find_opt t.slots slot with
    | None -> ()
    | Some st ->
      st.acks <- st.acks + 1;
      if st.acks >= majority t && not st.done_ then begin
        st.done_ <- true;
        t.stats.commits <- t.stats.commits + 1;
        t.committed <- (slot, st.value) :: t.committed;
        Histogram.record_span t.stats.latency st.started_at (Sim.now t.sim);
        (* Asynchronous learn: not on the client's critical path. *)
        List.iter
          (fun a ->
            send t ~src:t.config.leader ~dst:a (Learn { slot; value = st.value }))
          t.config.acceptors;
        st.on_done ()
      end)
  | Phase1 _ | Phase1_ok _ | Accept _ | Learn _ | Accepted _ -> ()

let create ~sim ~rng ~net ~config () =
  let t =
    {
      sim;
      rng;
      net;
      config;
      stats = { commits = 0; messages = 0; latency = Histogram.create () };
      acceptor_states = Simnet.Addr.Tbl.create 8;
      slots = Hashtbl.create 64;
      leader_ready = false;
      phase1_oks = 0;
      next_slot = 0;
      committed = [];
      backlog = [];
    }
  in
  List.iter
    (fun a ->
      Simnet.Addr.Tbl.replace t.acceptor_states a
        { promised = 0; log = Hashtbl.create 64 };
      Simnet.Net.register net a (acceptor_handle t a))
    config.acceptors;
  Simnet.Net.register net config.leader (leader_handle t);
  (* Phase 1 once, at leadership acquisition. *)
  List.iter
    (fun a -> send t ~src:config.leader ~dst:a (Phase1 { ballot }))
    config.acceptors;
  t

let commit t ~value ~on_done =
  if t.leader_ready then do_commit t value on_done
  else t.backlog <- (value, on_done) :: t.backlog

let log_length t = List.length t.committed
let stats t = t.stats
