(** Lease-based fencing — the alternative Aurora rejects in §2.4.

    "Some systems use leases to establish short term entitlements to access
    the system, but leases introduce latency when one needs to wait for
    expiry.  Aurora, rather than waiting for a lease to expire, just
    changes the locks on the door."

    Model: a resource grants a lease of fixed duration to one holder; a
    successor may not act until the incumbent's lease has provably expired
    (duration + maximum clock skew).  The E-series experiment compares the
    takeover latency of this scheme against an epoch bump, which costs one
    quorum round trip. *)

type t

val create :
  sim:Simcore.Sim.t ->
  duration:Simcore.Time_ns.t ->
  max_clock_skew:Simcore.Time_ns.t ->
  t

val acquire : t -> holder:int -> (unit, Simcore.Time_ns.t) result
(** [Ok ()] grants (or renews for the current holder); [Error wait] tells
    the caller how long until the incumbent lease is safely expired. *)

val renew : t -> holder:int -> bool
(** Incumbent heartbeat; [false] if the lease already changed hands. *)

val holder : t -> Simcore.Time_ns.t -> int option
(** Current valid holder at a given instant. *)

val takeover_wait : t -> Simcore.Time_ns.t
(** How long a successor must wait right now before it can safely act —
    the latency the paper's epoch scheme avoids. *)
