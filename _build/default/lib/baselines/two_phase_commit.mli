(** Two-phase commit over the simulated network — the classical distributed
    commit protocol Aurora's quorum-ack commit is compared against (§1,
    §2.3, §5).

    A coordinator drives PREPARE to all participants, collects unanimous
    votes, then drives COMMIT/ABORT and collects acknowledgements.  The
    client-visible commit point is when all participants acknowledge the
    decision's durability (the conservative, synchronous variant used by
    traditional systems).  Cost per commit: 2 round trips to every
    participant, 4n messages, plus two durable log forces at each
    participant and one at the coordinator — and a blocking window if the
    coordinator dies between phases, which the experiment measures by
    injecting coordinator crashes. *)

type message
(** Protocol messages; instantiate the network with this type. *)

type config = {
  participants : Simnet.Addr.t list;
  coordinator : Simnet.Addr.t;
  log_force : Simcore.Distribution.t;
      (** Durable log-force latency at each node per phase. *)
  prepare_vote_abort_probability : float;
      (** Chance a participant votes NO (client sees an abort). *)
}

type decision = Committed | Aborted

type stats = {
  mutable commits : int;
  mutable aborts : int;
  mutable messages : int;
  latency : Simcore.Histogram.t;
}

type t

val create :
  sim:Simcore.Sim.t ->
  rng:Simcore.Rng.t ->
  net:message Simnet.Net.t ->
  config:config ->
  unit ->
  t
(** Registers coordinator and participant handlers on the network. *)

val commit : t -> on_done:(decision -> unit) -> unit
(** Run one distributed commit. *)

val stats : t -> stats

val blocked_transactions : t -> int
(** Transactions stuck in the prepared state awaiting a coordinator
    decision — 2PC's notorious blocking window, visible when the harness
    crashes the coordinator between phases. *)
