open Simcore

type message =
  | Write of { req : int; key : string; value : string }
  | Write_ack of { req : int }
  | Read of { req : int; key : string }
  | Read_reply of { req : int; value : string option }

type config = {
  client : Simnet.Addr.t;
  replicas : Simnet.Addr.t list;
  disk : Distribution.t;
}

type stats = {
  mutable writes : int;
  mutable reads : int;
  mutable messages : int;
  write_latency : Histogram.t;
  read_latency : Histogram.t;
}

type pending =
  | Pwrite of {
      started_at : Time_ns.t;
      mutable acks : int;
      on_done : unit -> unit;
    }
  | Pread of { started_at : Time_ns.t; on_done : string option -> unit }

type t = {
  sim : Sim.t;
  rng : Rng.t;
  net : message Simnet.Net.t;
  config : config;
  stats : stats;
  stores : (string, string) Hashtbl.t Simnet.Addr.Tbl.t;
  pendings : (int, pending) Hashtbl.t;
  mutable next_req : int;
  mutable rr : int; (* round-robin read target *)
}

let send t ~src ~dst msg =
  t.stats.messages <- t.stats.messages + 1;
  Simnet.Net.send t.net ~src ~dst ~bytes:128 msg

let replica_handle t self (env : message Simnet.Net.envelope) =
  let store = Simnet.Addr.Tbl.find t.stores self in
  match env.msg with
  | Write { req; key; value } ->
    ignore
      (Sim.schedule t.sim ~delay:(Distribution.sample t.config.disk t.rng)
         (fun () ->
           Hashtbl.replace store key value;
           send t ~src:self ~dst:env.src (Write_ack { req })))
  | Read { req; key } ->
    ignore
      (Sim.schedule t.sim ~delay:(Distribution.sample t.config.disk t.rng)
         (fun () ->
           send t ~src:self ~dst:env.src
             (Read_reply { req; value = Hashtbl.find_opt store key })))
  | Write_ack _ | Read_reply _ -> ()

let client_handle t (env : message Simnet.Net.envelope) =
  match env.msg with
  | Write_ack { req } -> (
    match Hashtbl.find_opt t.pendings req with
    | Some (Pwrite p) ->
      p.acks <- p.acks + 1;
      if p.acks = List.length t.config.replicas then begin
        Hashtbl.remove t.pendings req;
        t.stats.writes <- t.stats.writes + 1;
        Histogram.record_span t.stats.write_latency p.started_at (Sim.now t.sim);
        p.on_done ()
      end
    | Some (Pread _) | None -> ())
  | Read_reply { req; value } -> (
    match Hashtbl.find_opt t.pendings req with
    | Some (Pread p) ->
      Hashtbl.remove t.pendings req;
      t.stats.reads <- t.stats.reads + 1;
      Histogram.record_span t.stats.read_latency p.started_at (Sim.now t.sim);
      p.on_done value
    | Some (Pwrite _) | None -> ())
  | Write _ | Read _ -> ()

let create ~sim ~rng ~net ~config () =
  let t =
    {
      sim;
      rng;
      net;
      config;
      stats =
        {
          writes = 0;
          reads = 0;
          messages = 0;
          write_latency = Histogram.create ();
          read_latency = Histogram.create ();
        };
      stores = Simnet.Addr.Tbl.create 8;
      pendings = Hashtbl.create 64;
      next_req = 0;
      rr = 0;
    }
  in
  List.iter
    (fun r ->
      Simnet.Addr.Tbl.replace t.stores r (Hashtbl.create 256);
      Simnet.Net.register net r (replica_handle t r))
    config.replicas;
  Simnet.Net.register net config.client (client_handle t);
  t

let write t ~key ~value ~on_done =
  let req = t.next_req in
  t.next_req <- req + 1;
  Hashtbl.add t.pendings req
    (Pwrite { started_at = Sim.now t.sim; acks = 0; on_done });
  List.iter
    (fun r -> send t ~src:t.config.client ~dst:r (Write { req; key; value }))
    t.config.replicas

let read t ~key ~on_done =
  let req = t.next_req in
  t.next_req <- req + 1;
  Hashtbl.add t.pendings req (Pread { started_at = Sim.now t.sim; on_done });
  let target = List.nth t.config.replicas (t.rr mod List.length t.config.replicas) in
  t.rr <- t.rr + 1;
  send t ~src:t.config.client ~dst:target (Read { req; key })

let stats t = t.stats
