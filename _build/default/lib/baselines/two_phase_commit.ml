open Simcore

type message =
  | Prepare of { txn : int }
  | Vote of { txn : int; yes : bool }
  | Decide of { txn : int; commit : bool }
  | Decide_ack of { txn : int }

type config = {
  participants : Simnet.Addr.t list;
  coordinator : Simnet.Addr.t;
  log_force : Distribution.t;
  prepare_vote_abort_probability : float;
}

type decision = Committed | Aborted

type stats = {
  mutable commits : int;
  mutable aborts : int;
  mutable messages : int;
  latency : Histogram.t;
}

type txn_state = {
  started_at : Time_ns.t;
  mutable votes : int;
  mutable nacked : bool;
  mutable acks : int;
  mutable decided : bool;
  on_done : decision -> unit;
}

type participant_state = { mutable prepared : int list (* txns in doubt *) }

type t = {
  sim : Sim.t;
  rng : Rng.t;
  net : message Simnet.Net.t;
  config : config;
  stats : stats;
  txns : (int, txn_state) Hashtbl.t;
  participant_states : participant_state Simnet.Addr.Tbl.t;
  mutable next_txn : int;
}

let n_participants t = List.length t.config.participants

let send t ~src ~dst msg =
  t.stats.messages <- t.stats.messages + 1;
  Simnet.Net.send t.net ~src ~dst ~bytes:64 msg

let log_force t k =
  let delay = Distribution.sample t.config.log_force t.rng in
  ignore (Sim.schedule t.sim ~delay k)

let participant_state t addr =
  match Simnet.Addr.Tbl.find_opt t.participant_states addr with
  | Some s -> s
  | None ->
    let s = { prepared = [] } in
    Simnet.Addr.Tbl.add t.participant_states addr s;
    s

let finish t txn_id st decision =
  if not st.decided then begin
    st.decided <- true;
    (match decision with
    | Committed -> t.stats.commits <- t.stats.commits + 1
    | Aborted -> t.stats.aborts <- t.stats.aborts + 1);
    Histogram.record_span t.stats.latency st.started_at (Sim.now t.sim);
    Hashtbl.remove t.txns txn_id;
    st.on_done decision
  end

let coordinator_handle t (env : message Simnet.Net.envelope) =
  match env.msg with
  | Vote { txn; yes } -> (
    match Hashtbl.find_opt t.txns txn with
    | None -> ()
    | Some st ->
      if not yes then st.nacked <- true;
      st.votes <- st.votes + 1;
      if st.votes = n_participants t then begin
        let commit = not st.nacked in
        (* Coordinator forces its decision record before phase 2. *)
        log_force t (fun () ->
            List.iter
              (fun p ->
                send t ~src:t.config.coordinator ~dst:p (Decide { txn; commit }))
              t.config.participants)
      end)
  | Decide_ack { txn } -> (
    match Hashtbl.find_opt t.txns txn with
    | None -> ()
    | Some st ->
      st.acks <- st.acks + 1;
      if st.acks = n_participants t then
        finish t txn st (if st.nacked then Aborted else Committed))
  | Prepare _ | Decide _ -> ()

let participant_handle t self (env : message Simnet.Net.envelope) =
  let ps = participant_state t self in
  match env.msg with
  | Prepare { txn } ->
    let yes = not (Rng.bernoulli t.rng t.config.prepare_vote_abort_probability) in
    (* Participant forces its prepare record before voting. *)
    log_force t (fun () ->
        if yes then ps.prepared <- txn :: ps.prepared;
        send t ~src:self ~dst:t.config.coordinator (Vote { txn; yes }))
  | Decide { txn; commit = _ } ->
    log_force t (fun () ->
        ps.prepared <- List.filter (fun x -> x <> txn) ps.prepared;
        send t ~src:self ~dst:t.config.coordinator (Decide_ack { txn }))
  | Vote _ | Decide_ack _ -> ()

let create ~sim ~rng ~net ~config () =
  let t =
    {
      sim;
      rng;
      net;
      config;
      stats = { commits = 0; aborts = 0; messages = 0; latency = Histogram.create () };
      txns = Hashtbl.create 64;
      participant_states = Simnet.Addr.Tbl.create 8;
      next_txn = 0;
    }
  in
  Simnet.Net.register net config.coordinator (coordinator_handle t);
  List.iter
    (fun p -> Simnet.Net.register net p (participant_handle t p))
    config.participants;
  t

let commit t ~on_done =
  let txn = t.next_txn in
  t.next_txn <- txn + 1;
  Hashtbl.add t.txns txn
    {
      started_at = Sim.now t.sim;
      votes = 0;
      nacked = false;
      acks = 0;
      decided = false;
      on_done;
    };
  List.iter
    (fun p -> send t ~src:t.config.coordinator ~dst:p (Prepare { txn }))
    t.config.participants

let stats t = t.stats

let blocked_transactions t =
  Simnet.Addr.Tbl.fold
    (fun _ ps acc -> acc + List.length ps.prepared)
    t.participant_states 0
