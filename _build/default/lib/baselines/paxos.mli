(** Single-decree Paxos (Lamport), the consensus primitive Aurora avoids.

    Complete implementation over the simulated network: proposers run
    Phase 1 (prepare/promise) and Phase 2 (accept/accepted) with ballots
    [(round, proposer_id)]; acceptors durably force their promised/accepted
    state before answering.  Proposers retry with higher ballots on
    rejection or timeout, so the instance terminates under partial
    synchrony (and livelocks only as long as the network keeps reordering
    duels, which the jittered retry breaks with probability 1).

    Used directly in the property-test suite (agreement under message loss
    and contention) and as the building block of {!Paxos_commit}. *)

type message

type value = int

type config = {
  acceptors : Simnet.Addr.t list;
  log_force : Simcore.Distribution.t;
  retry_timeout : Simcore.Time_ns.t;
}

type stats = { mutable messages : int; mutable rounds : int }

type t
(** One consensus group (a set of acceptors). *)

val create :
  sim:Simcore.Sim.t ->
  rng:Simcore.Rng.t ->
  net:message Simnet.Net.t ->
  config:config ->
  unit ->
  t
(** Registers the acceptor handlers. *)

val propose :
  t ->
  proposer:Simnet.Addr.t ->
  proposer_id:int ->
  value ->
  on_chosen:(value -> unit) ->
  unit
(** Drive a proposal to completion; [on_chosen] fires with the decided
    value (possibly another proposer's — that is Paxos).  The proposer
    address must be registered by this call (it installs a handler). *)

val chosen : t -> value option
(** The value decided by a majority of acceptors, if any — computed from
    acceptor state, for test oracles. *)

val stats : t -> stats
