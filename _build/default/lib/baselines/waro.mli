(** Write-all / read-one replication — the "traditional replication model"
    of §3.1: every write must reach every replica (great read cost, worst
    write availability), so reads can be served by any single copy.

    Used by the E8 read experiment as the reference point for read I/O
    amplification, and to demonstrate the write-availability flip side:
    one dead replica blocks all writes until it is removed. *)

type message

type config = {
  client : Simnet.Addr.t;
  replicas : Simnet.Addr.t list;
  disk : Simcore.Distribution.t;
}

type stats = {
  mutable writes : int;
  mutable reads : int;
  mutable messages : int;
  write_latency : Simcore.Histogram.t;
  read_latency : Simcore.Histogram.t;
}

type t

val create :
  sim:Simcore.Sim.t ->
  rng:Simcore.Rng.t ->
  net:message Simnet.Net.t ->
  config:config ->
  unit ->
  t

val write : t -> key:string -> value:string -> on_done:(unit -> unit) -> unit
(** Completes only when every replica acknowledged (write-all). *)

val read : t -> key:string -> on_done:(string option -> unit) -> unit
(** One I/O to one replica (read-one). *)

val stats : t -> stats
