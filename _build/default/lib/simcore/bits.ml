let highest_bit v =
  if v <= 0 then invalid_arg "Bits.highest_bit: non-positive";
  let rec loop v n = if v = 1 then n else loop (v lsr 1) (n + 1) in
  loop v 0

let clz v = 62 - highest_bit v
