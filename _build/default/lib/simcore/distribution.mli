(** Latency / service-time distributions.

    A distribution is a recipe for drawing {!Time_ns.t} durations from an
    {!Rng.t}.  The simulated network, disks, and client think times are all
    parameterized by values of this type, so experiments can swap a constant
    link for a lognormal one, or splice a slow-tail mixture in, without
    touching component code. *)

type t

val constant : Time_ns.t -> t
(** Always the same duration. *)

val uniform : lo:Time_ns.t -> hi:Time_ns.t -> t
(** Uniform on the inclusive range. *)

val exponential : mean:Time_ns.t -> t

val lognormal : median:Time_ns.t -> sigma:float -> t
(** Lognormal with the given median; [sigma] is the shape (log-space std
    dev).  [sigma] ~ 0.3–0.6 models realistic disk/network service times. *)

val pareto : scale:Time_ns.t -> shape:float -> t
(** Heavy tail with minimum [scale]. *)

val shifted : Time_ns.t -> t -> t
(** [shifted base d] adds a deterministic floor to every sample — e.g.
    propagation delay plus variable queueing. *)

val mixture : (float * t) list -> t
(** [mixture [(w1, d1); (w2, d2); ...]] samples [di] with probability
    proportional to [wi].  Used for "mostly fast, occasionally slow"
    behaviours (e.g. a storage node hit by a GC pause).
    @raise Invalid_argument if weights are empty or non-positive. *)

val scaled : float -> t -> t
(** Multiply every sample by a factor (degraded / sped-up component). *)

val sample : t -> Rng.t -> Time_ns.t
(** Draw one duration.  Results are clamped to be non-negative. *)

val mean_estimate : t -> Rng.t -> int -> float
(** [mean_estimate d rng n] — empirical mean of [n] samples, in
    nanoseconds, for calibration tests. *)
