(** Exact summary statistics over small samples.

    Complements {!Histogram} (approximate, unbounded-stream) for cases where
    the sample set is small enough to keep: per-node latency trackers, test
    oracles, and table rendering in the experiment harness. *)

type t

val create : unit -> t
val add : t -> float -> unit
val of_list : float list -> t
val count : t -> int
val mean : t -> float
val stddev : t -> float
val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** Exact percentile by sorting (linear interpolation between order
    statistics); 0 when empty. *)

val values : t -> float array
(** Copy of recorded values in insertion order. *)

(** Exponentially weighted moving average, used by the read path's
    per-segment latency tracker (§3.1 of the paper). *)
module Ewma : sig
  type t

  val create : alpha:float -> init:float -> t
  (** [alpha] in (0,1]: weight of the newest observation. *)

  val observe : t -> float -> unit
  val value : t -> float
  val observations : t -> int
end
