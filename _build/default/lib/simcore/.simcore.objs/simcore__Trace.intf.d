lib/simcore/trace.mli: Format Time_ns
