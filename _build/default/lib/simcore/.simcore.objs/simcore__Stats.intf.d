lib/simcore/stats.mli:
