lib/simcore/sim.ml: Hashtbl Heap Int Time_ns
