lib/simcore/histogram.mli: Format Time_ns
