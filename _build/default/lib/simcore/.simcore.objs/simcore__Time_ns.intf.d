lib/simcore/time_ns.mli: Format
