lib/simcore/distribution.mli: Rng Time_ns
