lib/simcore/heap.mli:
