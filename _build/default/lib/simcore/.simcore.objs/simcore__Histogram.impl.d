lib/simcore/histogram.ml: Array Bits Float Format Time_ns
