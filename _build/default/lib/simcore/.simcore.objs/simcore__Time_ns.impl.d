lib/simcore/time_ns.ml: Format Int Stdlib
