lib/simcore/stats.ml: Array Float List
