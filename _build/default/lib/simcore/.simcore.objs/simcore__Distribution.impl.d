lib/simcore/distribution.ml: Array List Rng Time_ns
