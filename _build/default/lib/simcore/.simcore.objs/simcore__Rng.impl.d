lib/simcore/rng.ml: Array Float Int64 List
