lib/simcore/bits.ml:
