lib/simcore/trace.ml: Array Format List Time_ns
