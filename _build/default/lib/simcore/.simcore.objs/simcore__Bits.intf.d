lib/simcore/bits.mli:
