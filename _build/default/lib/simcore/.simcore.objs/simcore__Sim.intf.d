lib/simcore/sim.mli: Time_ns
