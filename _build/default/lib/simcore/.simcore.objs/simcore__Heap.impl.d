lib/simcore/heap.ml: Array
