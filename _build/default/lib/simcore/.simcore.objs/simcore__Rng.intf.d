lib/simcore/rng.mli:
