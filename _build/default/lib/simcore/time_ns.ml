type t = int

let zero = 0
let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let sec x = x * 1_000_000_000
let minutes x = sec (60 * x)
let hours x = minutes (60 * x)

let of_float_us x =
  if x <= 0. then 0 else int_of_float ((x *. 1_000.) +. 0.5)

let to_float_us t = float_of_int t /. 1_000.
let to_float_ms t = float_of_int t /. 1_000_000.
let to_float_s t = float_of_int t /. 1_000_000_000.

let add = ( + )
let sub = ( - )
let diff later earlier = later - earlier
let max = Stdlib.max
let min = Stdlib.min
let compare = Int.compare
let equal = Int.equal

let pp fmt t =
  if t < 1_000 then Format.fprintf fmt "%dns" t
  else if t < 1_000_000 then Format.fprintf fmt "%.2fus" (to_float_us t)
  else if t < 1_000_000_000 then Format.fprintf fmt "%.2fms" (to_float_ms t)
  else Format.fprintf fmt "%.3fs" (to_float_s t)

let to_string t = Format.asprintf "%a" pp t
