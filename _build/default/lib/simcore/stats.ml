type t = {
  mutable data : float array;
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create () =
  {
    data = [||];
    n = 0;
    sum = 0.;
    sumsq = 0.;
    vmin = infinity;
    vmax = neg_infinity;
  }

let add t v =
  if t.n = Array.length t.data then begin
    let cap = if t.n = 0 then 16 else t.n * 2 in
    let ndata = Array.make cap 0. in
    Array.blit t.data 0 ndata 0 t.n;
    t.data <- ndata
  end;
  t.data.(t.n) <- v;
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  t.sumsq <- t.sumsq +. (v *. v);
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let of_list l =
  let t = create () in
  List.iter (add t) l;
  t

let count t = t.n
let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

let stddev t =
  if t.n = 0 then 0.
  else begin
    let m = mean t in
    let var = (t.sumsq /. float_of_int t.n) -. (m *. m) in
    if var < 0. then 0. else sqrt var
  end

let min_value t = if t.n = 0 then 0. else t.vmin
let max_value t = if t.n = 0 then 0. else t.vmax

let percentile t p =
  if t.n = 0 then 0.
  else begin
    let sorted = Array.sub t.data 0 t.n in
    Array.sort Float.compare sorted;
    let p = Float.max 0. (Float.min 100. p) in
    let rank = p /. 100. *. float_of_int (t.n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
    end
  end

let values t = Array.sub t.data 0 t.n

module Ewma = struct
  type t = { alpha : float; mutable v : float; mutable n : int }

  let create ~alpha ~init =
    if alpha <= 0. || alpha > 1. then invalid_arg "Ewma.create: alpha";
    { alpha; v = init; n = 0 }

  let observe t x =
    t.v <- (t.alpha *. x) +. ((1. -. t.alpha) *. t.v);
    t.n <- t.n + 1

  let value t = t.v
  let observations t = t.n
end
