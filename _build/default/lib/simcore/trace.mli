(** Lightweight bounded event tracing for debugging simulations.

    A ring buffer of timestamped, labelled events.  Components log
    milestones ("segment 3 SCL -> 105") cheaply; tests and the CLI can dump
    the tail when something looks wrong.  Disabled traces cost one branch
    per call. *)

type t

val create : ?capacity:int -> unit -> t
(** Ring of [capacity] entries (default 4096). *)

val enable : t -> unit
val disable : t -> unit
val is_enabled : t -> bool

val record : t -> at:Time_ns.t -> string -> unit
(** No-op when disabled; otherwise stores (at, message), evicting the
    oldest entry when full. *)

val recordf :
  t -> at:Time_ns.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the message is only built when enabled. *)

val events : t -> (Time_ns.t * string) list
(** Oldest first. *)

val length : t -> int
val clear : t -> unit

val dump : t -> Format.formatter -> unit
(** Render one event per line with timestamps. *)
