(** Simulated time, in integer nanoseconds.

    All simulation components share a single monotonically advancing clock
    owned by the {!Sim} event loop.  Durations and instants share the same
    representation; an instant is a duration since the simulation epoch. *)

type t = int
(** Nanoseconds since the simulation epoch (instants) or a span
    (durations).  63-bit ints give ~292 years of range, far beyond any
    simulated horizon used here. *)

val zero : t

val ns : int -> t
(** [ns x] is [x] nanoseconds. *)

val us : int -> t
(** [us x] is [x] microseconds. *)

val ms : int -> t
(** [ms x] is [x] milliseconds. *)

val sec : int -> t
(** [sec x] is [x] seconds. *)

val minutes : int -> t
val hours : int -> t

val of_float_us : float -> t
(** [of_float_us x] converts a fractional microsecond duration, rounding to
    the nearest nanosecond.  Negative inputs clamp to [zero]. *)

val to_float_us : t -> float
val to_float_ms : t -> float
val to_float_s : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val diff : t -> t -> t
(** [diff later earlier] = [later - earlier]. *)

val max : t -> t -> t
val min : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/us/ms/s). *)

val to_string : t -> string
