type t = {
  capacity : int;
  mutable enabled : bool;
  buf : (Time_ns.t * string) option array;
  mutable next : int;
  mutable count : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity";
  { capacity; enabled = false; buf = Array.make capacity None; next = 0; count = 0 }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let is_enabled t = t.enabled

let record t ~at msg =
  if t.enabled then begin
    t.buf.(t.next) <- Some (at, msg);
    t.next <- (t.next + 1) mod t.capacity;
    if t.count < t.capacity then t.count <- t.count + 1
  end

let recordf t ~at fmt =
  Format.kasprintf
    (fun msg -> if t.enabled then record t ~at msg)
    fmt

let events t =
  let start = (t.next - t.count + t.capacity) mod t.capacity in
  List.init t.count (fun i ->
      match t.buf.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let length t = t.count

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.count <- 0

let dump t fmt =
  List.iter
    (fun (at, msg) -> Format.fprintf fmt "[%a] %s@." Time_ns.pp at msg)
    (events t)
