(** Small bit-twiddling helpers shared by histogram bucketing. *)

val clz : int -> int
(** Count of leading zero bits of a positive 63-bit OCaml int, counting from
    bit 62 (the sign bit is excluded).  [clz 1 = 62].
    @raise Invalid_argument on non-positive input. *)

val highest_bit : int -> int
(** [highest_bit v] is the position of the most significant set bit
    ([highest_bit 1 = 0]). *)
