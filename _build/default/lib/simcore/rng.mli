(** Deterministic pseudo-random numbers for the simulator.

    SplitMix64 core with convenience samplers.  Every stochastic component of
    the simulation draws from an explicitly threaded [Rng.t] so that a run is
    a pure function of its seed: identical seeds reproduce identical event
    schedules, which the test suite and the experiment harness rely on. *)

type t

val create : int -> t
(** [create seed] builds an independent generator.  Generators created from
    distinct seeds produce statistically independent streams. *)

val split : t -> t
(** [split t] derives a new independent generator from [t], advancing [t].
    Use to give each simulated component its own stream so that adding a
    component does not perturb the draws seen by others. *)

val copy : t -> t
(** [copy t] duplicates the current state (the copies then evolve
    independently but identically if used identically). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean (> 0). *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal sample via Box–Muller. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** exp of a Gaussian: the classic heavy-ish-tailed service-time model. *)

val pareto : t -> scale:float -> shape:float -> float
(** Pareto sample: heavy tail with minimum [scale] and tail index [shape]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] draws [k] distinct elements
    ([k <= Array.length arr]). *)
