(** Transaction identifiers, allocated by the writer instance. *)

type t = private int

val of_int : int -> t
val to_int : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t

(** Monotonic allocator. *)
module Allocator : sig
  type txn_id := t
  type t

  val create : unit -> t
  val take : t -> txn_id

  val reset_above : t -> txn_id -> unit
  (** Resume allocation above an id observed in the recovered log, so a
      post-recovery writer never reuses a transaction id. *)
end
