(** Reference algorithms and validators over record sets.

    These are deliberately naive (sort-and-scan) implementations used as
    oracles by the property-test suite to check the incremental structures
    ({!Hot_log}) and, at runtime, to audit chain integrity in debug builds. *)

val scl_reference : anchor:Lsn.t -> Log_record.t list -> Lsn.t
(** SCL computed from first principles: starting from [anchor], repeatedly
    follow the unique record whose [prev_segment] equals the running tail.
    Order of the input list is irrelevant. *)

val validate_segment_chain : Log_record.t list -> (unit, string) result
(** Check that the records form a linear segment chain when sorted by LSN:
    each record's [prev_segment] is the LSN of its predecessor (or
    {!Lsn.none} for the first). *)

val validate_volume_chain : Log_record.t list -> (unit, string) result
(** Same, for the [prev_volume] links across the whole volume's records. *)

val block_versions : Log_record.t list -> Block_id.t -> Log_record.t list
(** All records touching a block, in block-chain order (oldest first),
    validating [prev_block] links along the way.
    @raise Failure on a broken block chain. *)
