type t = int

let of_int i =
  if i < 0 then invalid_arg "Block_id.of_int: negative" else i

let to_int t = t
let compare = Int.compare
let equal = Int.equal
let hash t = t
let pp fmt t = Format.fprintf fmt "B%d" t

module Map = Map.Make (Int)
module Set = Set.Make (Int)

module Tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash t = t
end)
