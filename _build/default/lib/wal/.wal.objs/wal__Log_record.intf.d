lib/wal/log_record.mli: Block_id Format Lsn Txn_id
