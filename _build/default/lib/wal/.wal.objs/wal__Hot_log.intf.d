lib/wal/hot_log.mli: Log_record Lsn
