lib/wal/truncation.mli: Format Lsn
