lib/wal/log_chain.ml: Block_id Format Hashtbl List Log_record Lsn
