lib/wal/block_id.mli: Format Hashtbl Map Set
