lib/wal/log_chain.mli: Block_id Log_record Lsn
