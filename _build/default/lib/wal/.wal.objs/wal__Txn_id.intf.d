lib/wal/txn_id.mli: Format Hashtbl Map Set
