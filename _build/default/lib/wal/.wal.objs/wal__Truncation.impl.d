lib/wal/truncation.ml: Format Lsn
