lib/wal/log_record.ml: Block_id Format Lsn String Txn_id
