lib/wal/hot_log.ml: Hashtbl List Log_record Lsn
