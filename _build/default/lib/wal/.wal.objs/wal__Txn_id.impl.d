lib/wal/txn_id.ml: Format Hashtbl Int Map Set
