lib/wal/block_id.ml: Format Hashtbl Int Map Set
