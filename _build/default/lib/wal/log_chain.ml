let scl_reference ~anchor records =
  let by_prev = Hashtbl.create 64 in
  List.iter
    (fun (r : Log_record.t) ->
      Hashtbl.replace by_prev (Lsn.to_int r.prev_segment) r)
    records;
  let rec follow tail =
    match Hashtbl.find_opt by_prev (Lsn.to_int tail) with
    | None -> tail
    | Some r -> follow r.Log_record.lsn
  in
  follow anchor

let validate_links ~label ~prev_of records =
  let sorted =
    List.sort
      (fun (a : Log_record.t) (b : Log_record.t) -> Lsn.compare a.lsn b.lsn)
      records
  in
  let rec check prev = function
    | [] -> Ok ()
    | (r : Log_record.t) :: rest ->
      if Lsn.equal (prev_of r) prev then check r.lsn rest
      else
        Error
          (Format.asprintf "%s chain broken at %a: prev=%a expected %a" label
             Lsn.pp r.lsn Lsn.pp (prev_of r) Lsn.pp prev)
  in
  check Lsn.none sorted

let validate_segment_chain records =
  validate_links ~label:"segment"
    ~prev_of:(fun (r : Log_record.t) -> r.prev_segment)
    records

let validate_volume_chain records =
  validate_links ~label:"volume"
    ~prev_of:(fun (r : Log_record.t) -> r.prev_volume)
    records

let block_versions records block =
  let touching =
    List.filter
      (fun (r : Log_record.t) -> Block_id.equal r.block block)
      records
  in
  let sorted =
    List.sort
      (fun (a : Log_record.t) (b : Log_record.t) -> Lsn.compare a.lsn b.lsn)
      touching
  in
  let rec check prev = function
    | [] -> ()
    | (r : Log_record.t) :: rest ->
      if Lsn.equal r.prev_block prev then check r.lsn rest
      else
        failwith
          (Format.asprintf "block chain broken at %a (prev_block=%a)" Lsn.pp
             r.lsn Lsn.pp r.prev_block)
  in
  check Lsn.none sorted;
  sorted
