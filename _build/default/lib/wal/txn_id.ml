type t = int

let of_int i =
  if i < 0 then invalid_arg "Txn_id.of_int: negative" else i

let to_int t = t
let compare = Int.compare
let equal = Int.equal
let hash t = t
let pp fmt t = Format.fprintf fmt "T%d" t

module Set = Set.Make (Int)
module Map = Map.Make (Int)

module Tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash t = t
end)

module Allocator = struct
  type nonrec t = { mutable last : int }

  let create () = { last = 0 }

  let take t =
    t.last <- t.last + 1;
    t.last

  let reset_above t id = if id > t.last then t.last <- id
end
