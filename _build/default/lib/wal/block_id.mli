(** Data-block (page) identifiers.

    The volume's block space is partitioned into protection groups by block
    id; redo for a block is shipped only to the segments of the owning
    protection group. *)

type t = private int

val of_int : int -> t
val to_int : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
