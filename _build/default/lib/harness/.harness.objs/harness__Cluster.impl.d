lib/harness/cluster.ml: Aurora_core Az Distribution Layout List Member_id Membership Quorum Rng Sim Simcore Simnet Storage Time_ns Wal
