lib/harness/report.mli: Simcore
