lib/harness/report.ml: Buffer List Printf Simcore String
