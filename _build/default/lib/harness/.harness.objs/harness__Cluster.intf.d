lib/harness/cluster.mli: Aurora_core Az Member_id Membership Quorum Simcore Simnet Storage
