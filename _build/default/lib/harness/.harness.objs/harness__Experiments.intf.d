lib/harness/experiments.mli: Availability Cluster Membership Quorum Quorum_set Report Simcore
