#!/bin/sh
# Performance trajectory: run the Bechamel micro-suite plus the end-to-end
# reference scenario and write a machine-readable BENCH_*.json report at the
# repo root (see lib/perf/bench_report.mli for the schema).
#
#   scripts/bench.sh              # writes BENCH_NNN.json (next free number)
#   scripts/bench.sh BENCH_007.json
#
# After writing, the trajectory is listed and — when a previous report
# exists — the new report is diffed against the latest one with the default
# 10% regression threshold (informational: wall-clock metrics are machine-
# dependent, so cross-machine diffs are noise).
set -eu

cd "$(dirname "$0")/.."

if [ $# -ge 1 ]; then
  out=$1
else
  # Next free BENCH_NNN.json, zero-padded so lexicographic order stays
  # chronological.
  n=1
  while [ -e "$(printf 'BENCH_%03d.json' "$n")" ]; do
    n=$((n + 1))
  done
  out=$(printf 'BENCH_%03d.json' "$n")
fi

prev=$(ls BENCH_*.json 2>/dev/null | grep -v "^$out\$" | sort | tail -1 || true)

dune build bench/main.exe bin/aurora_cli.exe

AURORA_GIT_SHA=$(git rev-parse --short HEAD 2>/dev/null || echo unknown) \
  dune exec --no-build bench/main.exe -- report --out "$out"

echo
dune exec --no-build bin/aurora_cli.exe -- perf list --dir .

if [ -n "$prev" ]; then
  echo
  echo "-- diff vs $prev (informational) --"
  dune exec --no-build bin/aurora_cli.exe -- perf diff "$prev" "$out" || true
fi
