#!/bin/sh
# Tier-1 gate: build everything and run the full test suite, refusing to
# proceed if build artefacts have been staged (the repo must never track
# _build/; see .gitignore).
set -eu

cd "$(dirname "$0")/.."

# --diff-filter=d: staged deletions of _build/ files are fine (that's the
# cleanup); staged additions/modifications are not.
staged_build=$(git diff --cached --name-only --diff-filter=d | grep '^_build/' || true)
if [ -n "$staged_build" ]; then
  echo "error: _build/ files are staged for commit:" >&2
  echo "$staged_build" | head -5 >&2
  echo "run: git restore --staged _build/" >&2
  exit 1
fi

dune build @all
dune runtest

echo "check.sh: all green"
