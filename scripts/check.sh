#!/bin/sh
# Tier-1 gate: build everything and run the full test suite, refusing to
# proceed if build artefacts have been staged (the repo must never track
# _build/; see .gitignore).
set -eu

cd "$(dirname "$0")/.."

# --diff-filter=d: staged deletions of _build/ files are fine (that's the
# cleanup); staged additions/modifications are not.
staged_build=$(git diff --cached --name-only --diff-filter=d | grep '^_build/' || true)
if [ -n "$staged_build" ]; then
  echo "error: _build/ files are staged for commit:" >&2
  echo "$staged_build" | head -5 >&2
  echo "run: git restore --staged _build/" >&2
  exit 1
fi

dune build @all

# Static-analysis gate: aurora_lint walks every .ml/.mli under lib/ bin/
# bench/ test/ and fails on any finding not frozen in lint/baseline.txt
# (determinism, stable iteration, protocol-type discipline, interface
# coverage, raw LSN arithmetic — see DESIGN.md §6).  Runs before the
# runtime determinism gate because it rejects the *root causes* the byte
# diff below can only catch probabilistically.
dune build @lint

# Typed tier: interprocedural rules over the compiler's .cmt trees —
# hot-path allocation (call graph from the hot-entry manifest), sim-state
# purity (Reset.register coverage), protocol/event constructor coverage,
# and type-precise polymorphic-compare detection (DESIGN.md §6).
dune build @lint-typed

dune runtest

# Perf-report smoke: write a tiny-scale BENCH report and push it through the
# reader + regression-compare path (no timing assertions), so the JSON
# writer and compare logic cannot rot between bench runs.
dune build @bench-smoke

# VOPR smoke: three short curated fault scenarios, a digest-determinism
# double-run, and a 25-seed nemesis mini-swarm — every run must end with
# zero semantic-invariant violations (see DESIGN.md section 7).
dune build @vopr-smoke

# Flight-recorder smoke: force a curated scenario to fail, shrink it, and
# verify the repro artifact carries recorder rings whose explain output is
# byte-deterministic and covers send -> ack -> VCL advance -> commit ack
# (see DESIGN.md section 8).
dune build @recorder-smoke

# Determinism gate: the whole sim (including the observability sampler,
# time-series decimation, and trace) must be byte-identical across reruns
# of the same seed.  Any nondeterminism (hash-order iteration, wall-clock
# leakage, unseeded randomness) shows up here as a byte diff.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
dune exec --no-build bin/aurora_cli.exe -- smoke --json --seed 7 > "$tmpdir/a.json"
dune exec --no-build bin/aurora_cli.exe -- smoke --json --seed 7 > "$tmpdir/b.json"
if ! cmp -s "$tmpdir/a.json" "$tmpdir/b.json"; then
  echo "error: smoke --json is not deterministic across reruns of seed 7" >&2
  diff "$tmpdir/a.json" "$tmpdir/b.json" | head -10 >&2
  exit 1
fi

echo "check.sh: all green (determinism gate: byte-identical reruns)"
